//! The static-analysis gate: `cargo test` fails if the workspace picks up
//! lint violations beyond `lint-baseline.toml`. The same check is
//! available interactively as `cargo run -p crowdnet-lint -- --workspace`.

use crowdnet_lint::{analyze_workspace, baseline::Baseline, run_rules, rules, workspace};
use std::path::Path;

fn gate() -> crowdnet_lint::baseline::GateReport {
    let root =
        workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let analysis = analyze_workspace(&root).expect("workspace lexes");
    let diags = run_rules(&analysis);
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    let baseline = Baseline::parse(&text).expect("lint-baseline.toml parses");
    baseline.gate(diags)
}

#[test]
fn workspace_is_clean_against_the_lint_baseline() {
    let report = gate();
    assert!(
        report.new.is_empty(),
        "new lint violations (fix them or, for pre-existing code being moved, \
         adjust lint-baseline.toml):\n{}",
        report
            .new
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_entries_are_not_stale() {
    // A stale entry means a file got cleaner than its allowance — ratchet
    // the baseline down so the improvement cannot regress silently.
    let report = gate();
    let stale: Vec<String> = report
        .stale
        .iter()
        .map(|(rule, file, allowed, found)| {
            format!("[{rule}] {file}: allows {allowed}, found {found}")
        })
        .collect();
    assert!(
        stale.is_empty(),
        "stale baseline entries — run `cargo run -p crowdnet-lint -- --workspace \
         --write-baseline` to ratchet:\n{}",
        stale.join("\n")
    );
}

#[test]
fn rule_ids_are_unique_and_stable() {
    let mut ids: Vec<&str> = rules::ALL.iter().map(|r| r.id).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate rule ids");
    for expected in [
        "no-unwrap-in-lib",
        "no-wallclock",
        "lock-order-global",
        "panic-on-request-path",
        "unbounded-channel",
        "error-impl",
        "vfs-only-io",
        "vfs-protocol",
        "counter-contract",
    ] {
        assert!(ids.contains(&expected), "rule `{expected}` missing");
    }
    for rule in rules::ALL {
        assert!(!rule.explain.trim().is_empty(), "rule `{}` lacks --explain text", rule.id);
    }
}

#[test]
fn serve_request_path_is_panic_free_with_no_baseline_entries() {
    // Acceptance criterion for the flow-aware lint: panic-on-request-path
    // holds across crates/serve with nothing grandfathered in.
    let root =
        workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    assert!(
        !text.contains("panic-on-request-path"),
        "panic-on-request-path must stay baseline-free"
    );
    let analysis = analyze_workspace(&root).expect("workspace lexes");
    let diags = run_rules(&analysis);
    let hits: Vec<String> = diags
        .iter()
        .filter(|d| d.rule == "panic-on-request-path")
        .map(|d| d.to_string())
        .collect();
    assert!(hits.is_empty(), "panic sites on the request path:\n{}", hits.join("\n"));
}
