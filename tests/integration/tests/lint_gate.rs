//! The static-analysis gate: `cargo test` fails if the workspace picks up
//! lint violations beyond `lint-baseline.toml`. The same check is
//! available interactively as `cargo run -p crowdnet-lint -- --workspace`.

use crowdnet_lint::{analyze_workspace, baseline::Baseline, run_rules, rules, workspace};
use std::path::Path;

fn gate() -> crowdnet_lint::baseline::GateReport {
    let root =
        workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let analysis = analyze_workspace(&root).expect("workspace lexes");
    let diags = run_rules(&analysis);
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    let baseline = Baseline::parse(&text).expect("lint-baseline.toml parses");
    baseline.gate(diags)
}

#[test]
fn workspace_is_clean_against_the_lint_baseline() {
    let report = gate();
    assert!(
        report.new.is_empty(),
        "new lint violations (fix them or, for pre-existing code being moved, \
         adjust lint-baseline.toml):\n{}",
        report
            .new
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_entries_are_not_stale() {
    // A stale entry means a file got cleaner than its allowance — ratchet
    // the baseline down so the improvement cannot regress silently.
    let report = gate();
    let stale: Vec<String> = report
        .stale
        .iter()
        .map(|(rule, file, allowed, found)| {
            format!("[{rule}] {file}: allows {allowed}, found {found}")
        })
        .collect();
    assert!(
        stale.is_empty(),
        "stale baseline entries — run `cargo run -p crowdnet-lint -- --workspace \
         --write-baseline` to ratchet:\n{}",
        stale.join("\n")
    );
}

#[test]
fn rule_ids_are_unique_and_stable() {
    let mut ids: Vec<&str> = rules::ALL.iter().map(|r| r.id).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate rule ids");
    for expected in [
        "no-unwrap-in-lib",
        "no-wallclock",
        "lock-ordering",
        "unbounded-channel",
        "error-impl",
    ] {
        assert!(ids.contains(&expected), "rule `{expected}` missing");
    }
}
