//! Equivalence property for the **out-of-process** shard tier: a
//! scatter-gather [`Router`] over N [`RemoteShard`] backends — each
//! talking to a real shard server over loopback TCP wire frames — must
//! answer every serve endpoint **byte-identically** to both the
//! in-process [`LocalShard`] deployment and the unsharded [`Service`],
//! for N ∈ {1, 2, 4}, across random interleavings of investor appends,
//! company appends, journal appends and snapshot rotations.
//! (`/healthz` reports live per-shard state by design and is skipped.)
//!
//! Version lockstep is asserted directly: the remote set's logical
//! version must mirror both the local set's and the unsharded store's
//! for the same op sequence — every write went over the wire through
//! the submit leg and still bumped exactly once.

use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{NS_COMPANIES, NS_USERS};
use crowdnet_serve::{bind, Request, Server, ServerConfig, Service, ServiceConfig, TcpHandle};
use crowdnet_shard::{LocalShard, Router, RouterConfig, ShardBackend, ShardSet};
use crowdnet_shardnet::{RemoteShard, RemoteShardConfig, ShardServer};
use crowdnet_store::{Document, Store};
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::Arc;

const NS_JOURNAL: &str = "journal/daily";

#[derive(Debug, Clone)]
enum Op {
    Company(u32),
    Investor { id: u32, portfolio: Vec<u32> },
    Journal(u32),
    JournalSnapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24).prop_map(Op::Company),
        ((100u32..116), proptest::collection::vec(0u32..24, 0..6))
            .prop_map(|(id, portfolio)| Op::Investor { id, portfolio }),
        (0u32..8).prop_map(Op::Journal),
        Just(Op::JournalSnapshot),
    ]
}

fn doc_for(op: &Op) -> Option<(&'static str, Document)> {
    match op {
        Op::Company(id) => Some((
            NS_COMPANIES,
            Document::new(
                format!("company:{id}"),
                obj! {"id" => u64::from(*id), "name" => format!("c{id}")},
            ),
        )),
        Op::Investor { id, portfolio } => {
            let arr: Vec<Value> = portfolio
                .iter()
                .map(|&c| Value::from(u64::from(c)))
                .collect();
            Some((
                NS_USERS,
                Document::new(
                    format!("user:{id}"),
                    obj! {
                        "id" => u64::from(*id),
                        "role" => "investor",
                        "investments" => Value::Arr(arr)
                    },
                ),
            ))
        }
        Op::Journal(day) => Some((
            NS_JOURNAL,
            Document::new(
                format!("day:{day}"),
                obj! {"day" => u64::from(*day), "funded" => u64::from(*day % 3)},
            ),
        )),
        Op::JournalSnapshot => None,
    }
}

fn apply_store(store: &Store, op: &Op) {
    match doc_for(op) {
        Some((ns, doc)) => store.put(ns, doc).expect("store put"),
        None => {
            store.new_snapshot(NS_JOURNAL).expect("store snapshot");
        }
    }
}

fn apply_set(set: &ShardSet, op: &Op) {
    match doc_for(op) {
        Some((ns, doc)) => set.put(ns, doc).expect("set put"),
        None => {
            set.new_snapshot(NS_JOURNAL).expect("set snapshot");
        }
    }
}

fn base_ops() -> Vec<Op> {
    let mut ops: Vec<Op> = (0..6).map(Op::Company).collect();
    ops.extend((100u32..106).map(|id| Op::Investor {
        id,
        portfolio: (0..6).filter(|c| (id + c) % 3 != 0).collect(),
    }));
    ops.push(Op::Journal(1));
    ops
}

/// Fast-failing client config for loopback tests.
fn client_config() -> RemoteShardConfig {
    RemoteShardConfig {
        retries: 1,
        backoff_base_ms: 1,
        probe_interval_ms: 0,
        ..RemoteShardConfig::default()
    }
}

/// One in-process shard server per shard, listening on loopback, plus a
/// remote set routed at them. The handles keep the listeners alive.
fn remote_deployment(
    shards: usize,
    telemetry: &Telemetry,
) -> (Arc<ShardSet>, Vec<TcpHandle>) {
    let mut handles = Vec::new();
    let mut backends: Vec<Arc<dyn ShardBackend>> = Vec::new();
    for index in 0..shards {
        let server_telemetry = Telemetry::new();
        let shard =
            Arc::new(LocalShard::open_memory(index, 4, &server_telemetry).expect("local shard"));
        let handler = Arc::new(ShardServer::new(shard, &server_telemetry));
        let server = Arc::new(Server::with_handler(
            handler,
            server_telemetry,
            ServerConfig::default(),
        ));
        let handle = bind(server, 0).expect("bind shard server");
        let remote = RemoteShard::new(index, handle.addr(), client_config(), telemetry)
            .expect("remote shard");
        handles.push(handle);
        backends.push(Arc::new(remote));
    }
    (
        Arc::new(ShardSet::from_backends(backends, telemetry)),
        handles,
    )
}

/// Build all three deployments from the same op sequence, asserting
/// version lockstep across them.
fn build_triple(ops: &[Op], shards: usize) -> (Service, Router, Router, Vec<TcpHandle>) {
    let store = Arc::new(Store::memory(4));
    for op in ops {
        apply_store(&store, op);
    }

    let local_telemetry = Telemetry::new();
    let local_set =
        ShardSet::memory(shards, store.partitions(), &local_telemetry).expect("local set");
    for op in ops {
        apply_set(&local_set, op);
    }

    let remote_telemetry = Telemetry::new();
    let (remote_set, handles) = remote_deployment(shards, &remote_telemetry);
    for op in ops {
        apply_set(&remote_set, op);
    }

    assert_eq!(
        remote_set.version(),
        store.version(),
        "remote logical version must mirror the unsharded store"
    );
    assert_eq!(
        remote_set.version(),
        local_set.version(),
        "remote logical version must mirror the in-process set"
    );

    let service = Service::new(store, ServiceConfig::default(), Telemetry::new());
    let local_router = Router::new(Arc::new(local_set), RouterConfig::default(), local_telemetry);
    let remote_router = Router::new(remote_set, RouterConfig::default(), remote_telemetry);
    (service, local_router, remote_router, handles)
}

/// Every example target plus error and edge probes.
fn probe_targets(service: &Service) -> Vec<String> {
    let mut targets = service.example_targets().expect("example targets");
    targets.extend(
        [
            "/entity/company/999",
            "/entity/planet/1",
            "/investor/9999/portfolio",
            "/company/9999/investors",
            "/communities/9999",
            "/top/investors?by=degree&k=3",
            "/sql?ns=ghost&q=SELECT+COUNT(*)+FROM+docs",
            "/sql?ns=journal%2Fdaily&q=SELECT+COUNT(*)+AS+n+FROM+docs",
            "/no/such/route",
        ]
        .into_iter()
        .map(String::from),
    );
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn remote_router_matches_local_and_unsharded_byte_for_byte(
        tail in proptest::collection::vec(op_strategy(), 0..32),
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let mut ops = base_ops();
        ops.extend(tail);
        let (service, local_router, remote_router, _handles) = build_triple(&ops, shards);
        for target in probe_targets(&service) {
            if target == "/healthz" {
                continue; // reports live per-shard state by design
            }
            let req = Request::get(&target);
            let direct = service.handle(&req);
            let local = local_router.handle(&req);
            let remote = remote_router.handle(&req);
            prop_assert!(
                direct.status == remote.status,
                "status diverged from unsharded on {} with {} remote shards: {} vs {}",
                target, shards, direct.status, remote.status
            );
            prop_assert!(
                direct.body == remote.body,
                "body diverged from unsharded on {} with {} remote shards: {} vs {}",
                target, shards,
                String::from_utf8_lossy(&direct.body),
                String::from_utf8_lossy(&remote.body)
            );
            prop_assert!(
                local.status == remote.status && local.body == remote.body,
                "remote diverged from the in-process shard tier on {} with {} shards",
                target, shards
            );
        }
    }
}
