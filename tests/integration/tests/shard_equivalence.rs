//! Equivalence property for the sharded serving tier: a scatter-gather
//! [`Router`] over N hash-partitioned shards must answer every serve
//! endpoint **byte-identically** to the single-store [`Service`] fed the
//! same write sequence — for N ∈ {1, 2, 4}, across random interleavings
//! of graph-bearing investor appends, company appends, stats-only journal
//! appends and snapshot rotations. `/healthz` is the one exception: it
//! reports live per-shard state by design.
//!
//! The property leans on two invariants the shard crate maintains:
//! snapshot lockstep (every shard holds the same snapshot count per
//! namespace, so per-shard scans merge into the unsharded scan) and the
//! logical version mirroring the unsharded `Store::version` for the same
//! op sequence (checked here directly).
//!
//! A second test covers the degraded path end to end: killing one of
//! three shards must flag partial results — never a 5xx — and
//! `recover()` must restore byte-identical answers.

use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{NS_COMPANIES, NS_USERS};
use crowdnet_serve::{Request, Service, ServiceConfig};
use crowdnet_shard::{Router, RouterConfig, ShardSet};
use crowdnet_store::{Document, Store};
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::Arc;

/// A non-graph namespace: exercises stats merging and snapshot lockstep.
const NS_JOURNAL: &str = "journal/daily";

/// One random write, spanning every event class the serving tier sees.
#[derive(Debug, Clone)]
enum Op {
    Company(u32),
    Investor { id: u32, portfolio: Vec<u32> },
    Journal(u32),
    JournalSnapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24).prop_map(Op::Company),
        ((100u32..116), proptest::collection::vec(0u32..24, 0..6))
            .prop_map(|(id, portfolio)| Op::Investor { id, portfolio }),
        (0u32..8).prop_map(Op::Journal),
        Just(Op::JournalSnapshot),
    ]
}

/// The document an op writes — shared by both sides so the corpora are
/// identical by construction.
fn doc_for(op: &Op) -> Option<(&'static str, Document)> {
    match op {
        Op::Company(id) => Some((
            NS_COMPANIES,
            Document::new(
                format!("company:{id}"),
                obj! {"id" => u64::from(*id), "name" => format!("c{id}")},
            ),
        )),
        Op::Investor { id, portfolio } => {
            let arr: Vec<Value> = portfolio
                .iter()
                .map(|&c| Value::from(u64::from(c)))
                .collect();
            Some((
                NS_USERS,
                Document::new(
                    format!("user:{id}"),
                    obj! {
                        "id" => u64::from(*id),
                        "role" => "investor",
                        "investments" => Value::Arr(arr)
                    },
                ),
            ))
        }
        Op::Journal(day) => Some((
            NS_JOURNAL,
            Document::new(
                format!("day:{day}"),
                obj! {"day" => u64::from(*day), "funded" => u64::from(*day % 3)},
            ),
        )),
        Op::JournalSnapshot => None,
    }
}

fn apply_store(store: &Store, op: &Op) {
    match doc_for(op) {
        Some((ns, doc)) => store.put(ns, doc).expect("store put"),
        None => {
            store.new_snapshot(NS_JOURNAL).expect("store snapshot");
        }
    }
}

fn apply_set(set: &ShardSet, op: &Op) {
    match doc_for(op) {
        Some((ns, doc)) => set.put(ns, doc).expect("set put"),
        None => {
            set.new_snapshot(NS_JOURNAL).expect("set snapshot");
        }
    }
}

/// A fixed base corpus so `example_targets` always resolves real ids,
/// followed by the random op tail.
fn base_ops() -> Vec<Op> {
    let mut ops: Vec<Op> = (0..6).map(Op::Company).collect();
    ops.extend((100u32..106).map(|id| Op::Investor {
        id,
        portfolio: (0..6).filter(|c| (id + c) % 3 != 0).collect(),
    }));
    ops.push(Op::Journal(1));
    ops
}

/// Build the unsharded reference and the sharded deployment from the
/// same op sequence, asserting version lockstep along the way.
fn build_pair(ops: &[Op], shards: usize) -> (Service, Router) {
    let store = Arc::new(Store::memory(4));
    for op in ops {
        apply_store(&store, op);
    }
    let telemetry = Telemetry::new();
    let set = ShardSet::memory(shards, store.partitions(), &telemetry).expect("shard set");
    for op in ops {
        apply_set(&set, op);
    }
    assert_eq!(
        set.version(),
        store.version(),
        "logical shard-set version must mirror the unsharded store"
    );
    let service = Service::new(store, ServiceConfig::default(), Telemetry::new());
    let router = Router::new(Arc::new(set), RouterConfig::default(), telemetry);
    (service, router)
}

/// Every example target plus error and edge probes: unknown entities,
/// malformed ids, missing params, unknown routes.
fn probe_targets(service: &Service) -> Vec<String> {
    let mut targets = service.example_targets().expect("example targets");
    targets.extend(
        [
            "/entity/company/999",
            "/entity/planet/1",
            "/entity/company/xyz",
            "/investor/9999/portfolio",
            "/company/9999/investors",
            "/investor/9999/communities",
            "/communities/9999",
            "/top/investors?by=fame",
            "/top/investors?k=nope",
            "/top/investors?by=degree&k=3",
            "/sql?q=SELECT+1",
            "/sql?ns=angellist%2Fusers",
            "/sql?ns=ghost&q=SELECT+COUNT(*)+FROM+docs",
            "/sql?ns=angellist%2Fusers&q=NOT+SQL",
            "/sql?ns=journal%2Fdaily&q=SELECT+COUNT(*)+AS+n+FROM+docs",
            "/no/such/route",
            "/",
        ]
        .into_iter()
        .map(String::from),
    );
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_router_matches_unsharded_service_byte_for_byte(
        tail in proptest::collection::vec(op_strategy(), 0..48),
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let mut ops = base_ops();
        ops.extend(tail);
        let (service, router) = build_pair(&ops, shards);
        for target in probe_targets(&service) {
            if target == "/healthz" {
                continue; // reports live per-shard state by design
            }
            let req = Request::get(&target);
            let direct = service.handle(&req);
            let routed = router.handle(&req);
            prop_assert!(
                direct.status == routed.status,
                "status diverged on {} with {} shards: {} vs {}",
                target, shards, direct.status, routed.status
            );
            prop_assert!(
                direct.body == routed.body,
                "body diverged on {} with {} shards: {} vs {}",
                target, shards,
                String::from_utf8_lossy(&direct.body),
                String::from_utf8_lossy(&routed.body)
            );
        }
    }
}

#[test]
fn killing_one_shard_degrades_and_recovery_restores_equivalence() {
    let mut ops = base_ops();
    ops.extend((0..12).map(|i| Op::Journal(i % 8)));
    ops.push(Op::JournalSnapshot);
    let (service, router) = build_pair(&ops, 3);
    let targets = probe_targets(&service);

    router.set().kill(1).expect("kill shard 1");
    let mut partials = 0usize;
    for target in &targets {
        if target == "/healthz" {
            continue;
        }
        let response = router.handle(&Request::get(target));
        assert!(
            response.status < 500,
            "GET {target} returned {} with a shard down",
            response.status
        );
        if String::from_utf8_lossy(&response.body).contains("\"partial\":true") {
            partials += 1;
        }
    }
    assert!(partials > 0, "no response was flagged partial with a shard down");

    router.set().recover().expect("recover shard 1");
    for target in &targets {
        if target == "/healthz" {
            continue;
        }
        let req = Request::get(target);
        let direct = service.handle(&req);
        let routed = router.handle(&req);
        assert_eq!(direct.status, routed.status, "status diverged on {target} after recovery");
        assert_eq!(
            direct.body, routed.body,
            "body diverged on {target} after recovery: {} vs {}",
            String::from_utf8_lossy(&direct.body),
            String::from_utf8_lossy(&routed.body),
        );
    }
}
