//! Store ↔ dataflow integration: the disk backend feeding partition-parallel
//! analytics, exactly as the crawl pipeline does with the memory backend.

use crowdnet_dataflow::dataset::scan_store;
use crowdnet_dataflow::ExecCtx;
use crowdnet_json::{obj, Value};
use crowdnet_store::{Document, SnapshotId, Store};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("crowdnet-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_store_feeds_dataflow_joins() {
    let store = Store::open(temp_dir("joins"), 4).unwrap();
    for i in 0..200u32 {
        store
            .put(
                "left",
                Document::new(format!("k:{i}"), obj! {"id" => i, "x" => i * 2}),
            )
            .unwrap();
    }
    for i in 0..100u32 {
        store
            .put(
                "right",
                Document::new(format!("k:{i}"), obj! {"id" => i, "y" => i * 3}),
            )
            .unwrap();
    }
    let ctx = ExecCtx::new(4);
    let left = scan_store(&store, "left", SnapshotId(0), ctx)
        .unwrap()
        .map(|d| {
            (
                d.body.get("id").and_then(Value::as_u64).unwrap(),
                d.body.get("x").and_then(Value::as_u64).unwrap(),
            )
        })
        .key_by(|&(id, _)| id)
        .map_values(|(_, x)| x);
    let right = scan_store(&store, "right", SnapshotId(0), ctx)
        .unwrap()
        .map(|d| {
            (
                d.body.get("id").and_then(Value::as_u64).unwrap(),
                d.body.get("y").and_then(Value::as_u64).unwrap(),
            )
        })
        .key_by(|&(id, _)| id)
        .map_values(|(_, y)| y);
    let joined = left.join(right).collect();
    assert_eq!(joined.len(), 100);
    for (id, (x, y)) in joined {
        assert_eq!(x, id * 2);
        assert_eq!(y, id * 3);
    }
}

#[test]
fn snapshots_survive_reopen_and_scan_in_parallel() {
    let root = temp_dir("snapshots");
    {
        let store = Store::open(&root, 2).unwrap();
        store
            .put("ns", Document::new("a", obj! {"day" => 0}))
            .unwrap();
        let snap1 = store.new_snapshot("ns").unwrap();
        store
            .put_snapshot("ns", snap1, Document::new("a", obj! {"day" => 1}))
            .unwrap();
    }
    let store = Store::open(&root, 2).unwrap();
    assert_eq!(store.snapshots("ns").len(), 2);
    let ctx = ExecCtx::new(2);
    for (snap, expected_day) in [(SnapshotId(0), 0), (SnapshotId(1), 1)] {
        let days: Vec<i64> = scan_store(&store, "ns", snap, ctx)
            .unwrap()
            .map(|d| d.body.get("day").and_then(Value::as_i64).unwrap())
            .collect();
        assert_eq!(days, vec![expected_day]);
    }
}

#[test]
fn dataflow_statistics_agree_with_direct_computation() {
    use crowdnet_dataflow::stats::{Ecdf, Summary};
    use crowdnet_dataflow::Dataset;
    let values: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64).collect();
    let ctx = ExecCtx::new(4);
    // Compute sum via the dataset engine, mean via stats, compare.
    let sum = Dataset::from_vec(values.clone(), ctx).reduce(0.0, |a, b| a + b, |a, b| a + b);
    let summary = Summary::of(&values).unwrap();
    assert!((sum / values.len() as f64 - summary.mean).abs() < 1e-9);
    let ecdf = Ecdf::new(values);
    assert_eq!(ecdf.eval(999.0), 1.0);
    assert!((ecdf.eval(499.0) - 0.5).abs() < 0.01);
}
