//! Equivalence properties for the columnar projection: for any mix of
//! store writes, the typed columns must decode back to *exactly* the
//! canonical JSON scan — same keys, same documents, same edges — whether
//! the projection was bootstrapped from a scan or maintained incrementally
//! through the ingest changefeed. Dataflow datasets and bipartite graphs
//! built off columns must be byte-identical to the JSON path. And because
//! the column store is derived, a crash in the middle of its on-disk
//! commit must never lose anything: the projection is rebuilt from the
//! JSON log on the next open.

use crowdnet_column::{open_or_rebuild, save, ColumnConfig, ColumnSet};
use crowdnet_dataflow::dataset::scan_store;
use crowdnet_dataflow::{Dataset, ExecCtx};
use crowdnet_graph::BipartiteGraph;
use crowdnet_ingest::{IngestConfig, IngestEngine};
use crowdnet_json::{obj, Value};
use crowdnet_serve::artifacts::{NS_COMPANIES, NS_USERS};
use crowdnet_store::{Document, FailpointFs, FaultPlan, MemFs, SnapshotId, Store, Vfs};
use crowdnet_telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::Arc;

/// A non-graph namespace whose snapshot rotations exercise per-snapshot
/// projection state.
const NS_JOURNAL: &str = "journal/daily";

/// One random store write. `Odd` documents carry floats, bools, nulls,
/// string lists and nested objects so the typed columns, the integer-list
/// encoder and the JSON-residual fallback all see traffic.
#[derive(Debug, Clone)]
enum Op {
    Company(u32),
    Investor { id: u32, portfolio: Vec<u32> },
    Journal(u32),
    JournalSnapshot,
    Odd { id: u32, score: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24).prop_map(Op::Company),
        ((100u32..116), proptest::collection::vec(0u32..24, 0..6))
            .prop_map(|(id, portfolio)| Op::Investor { id, portfolio }),
        (0u32..8).prop_map(Op::Journal),
        Just(Op::JournalSnapshot),
        ((0u32..12), (0u32..1000)).prop_map(|(id, score)| Op::Odd { id, score }),
    ]
}

fn apply(store: &Store, op: &Op) {
    match op {
        Op::Company(id) => store
            .put(
                NS_COMPANIES,
                Document::new(
                    format!("company:{id}"),
                    obj! {"id" => u64::from(*id), "name" => format!("c{id}")},
                ),
            )
            .expect("put company"),
        Op::Investor { id, portfolio } => {
            let arr: Vec<Value> =
                portfolio.iter().map(|&c| Value::from(u64::from(c))).collect();
            store
                .put(
                    NS_USERS,
                    Document::new(
                        format!("user:{id}"),
                        obj! {
                            "id" => u64::from(*id),
                            "role" => "investor",
                            "investments" => Value::Arr(arr)
                        },
                    ),
                )
                .expect("put investor")
        }
        Op::Journal(day) => store
            .put(
                NS_JOURNAL,
                Document::new(
                    format!("day:{day}"),
                    obj! {"day" => u64::from(*day), "funded" => u64::from(*day % 3)},
                ),
            )
            .expect("put journal"),
        Op::JournalSnapshot => {
            store.new_snapshot(NS_JOURNAL).expect("rotate snapshot");
        }
        Op::Odd { id, score } => store
            .put(
                NS_JOURNAL,
                Document::new(
                    format!("odd:{id}"),
                    obj! {
                        "id" => u64::from(*id),
                        "score" => f64::from(*score) / 8.0,
                        "flag" => *score % 2 == 0,
                        "gap" => Value::Null,
                        "tags" => Value::Arr(vec![
                            Value::from(format!("t{}", score % 5)),
                            Value::from("fixed"),
                        ]),
                        "meta" => obj! {"nested" => u64::from(*score)}
                    },
                ),
            )
            .expect("put odd"),
    }
}

/// Every `(namespace, snapshot)` the store holds.
fn all_snapshots(store: &Store) -> Vec<(String, SnapshotId)> {
    let mut out = Vec::new();
    let mut namespaces = store.namespaces().expect("namespaces");
    namespaces.sort();
    for ns in namespaces {
        for snap in store.snapshots(&ns) {
            out.push((ns.clone(), snap));
        }
    }
    out
}

/// Encode partitioned docs for byte comparison (partition-major order).
fn image(parts: &[Vec<Document>]) -> Vec<String> {
    parts.iter().flatten().map(Document::encode).collect()
}

/// The serving tier's investor→company edge walk over a canonical scan.
fn edges_json(store: &Store) -> Vec<(u32, u32)> {
    let Ok(parts) = store.scan_partitions(NS_USERS, SnapshotId(0)) else {
        return Vec::new();
    };
    let mut edges = Vec::new();
    for doc in parts.into_iter().flatten() {
        if doc.body.get("role").and_then(Value::as_str) != Some("investor") {
            continue;
        }
        let id = doc.body.get("id").and_then(Value::as_u64).unwrap_or(0) as u32;
        if let Some(arr) = doc.body.get("investments").and_then(Value::as_arr) {
            edges.extend(arr.iter().filter_map(Value::as_u64).map(|c| (id, c as u32)));
        }
    }
    edges
}

/// Assert the catalog is an exact projection of `store`: every snapshot's
/// decoded documents, the edge list, and dataflow/graph consumers all
/// byte-match the JSON path.
fn assert_projection_exact(
    store: &Store,
    catalog: &crowdnet_column::ColumnCatalog,
) -> Result<(), TestCaseError> {
    for (ns, snap) in all_snapshots(store) {
        let json = store.scan_partitions(&ns, snap).expect("json scan");
        let cols = catalog.docs_partitioned(&ns, snap).expect("column decode");
        prop_assert_eq!(image(&json), image(&cols));

        // The dataflow reader sees identical partitions in identical order.
        let ctx = ExecCtx::new(2);
        let via_store: Vec<String> = scan_store(store, &ns, snap, ctx)
            .expect("dataset scan")
            .map(|d| d.encode())
            .collect();
        let via_columns: Vec<String> = Dataset::from_columns(catalog, &ns, snap, ctx)
            .expect("dataset from columns")
            .map(|d| d.encode())
            .collect();
        prop_assert_eq!(via_store, via_columns);
    }

    // Edge segments replay the document-path extraction pair-for-pair, so
    // the graphs built from either side are identical.
    let json_edges = edges_json(store);
    if store.namespaces().expect("namespaces").contains(&NS_USERS.to_string()) {
        let col_edges = catalog.edges(NS_USERS, SnapshotId(0)).expect("edge segments");
        prop_assert_eq!(&json_edges, &col_edges);
        let g_json = BipartiteGraph::from_edges(json_edges);
        let g_cols = BipartiteGraph::from_edge_columns(catalog, NS_USERS, SnapshotId(0))
            .expect("graph from columns");
        prop_assert_eq!(g_json.investor_count(), g_cols.investor_count());
        prop_assert_eq!(g_json.company_count(), g_cols.company_count());
        for i in 0..g_json.investor_count() as u32 {
            prop_assert_eq!(g_json.investor_id(i), g_cols.investor_id(i));
            prop_assert_eq!(g_json.companies_of(i), g_cols.companies_of(i));
        }
    }
    Ok(())
}

proptest! {
    // Scenarios are in-memory store writes: cases are cheap.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bootstrap equivalence: for any op mix, a projection built from one
    /// scan decodes back to exactly the canonical JSON scan.
    #[test]
    fn bootstrapped_columns_decode_to_the_exact_json_scan(
        ops in proptest::collection::vec(op_strategy(), 0..48),
    ) {
        let store = Store::memory(3);
        for op in &ops {
            apply(&store, op);
        }
        let set = ColumnSet::build_from_store(&store, ColumnConfig::default(), None)
            .expect("build");
        prop_assert_eq!(set.version(), store.version());
        assert_projection_exact(&store, &set.catalog())?;
    }

    /// Incremental equivalence: a projection maintained through the ingest
    /// changefeed — any catch-up split and drain cadence — matches the
    /// bootstrap projection and the JSON scan exactly.
    #[test]
    fn incrementally_maintained_columns_match_bootstrap(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        split in 0usize..40,
        drain_every in 1usize..6,
    ) {
        let store = Arc::new(Store::memory(2));
        let split = split.min(ops.len());
        for op in &ops[..split] {
            apply(&store, op);
        }
        let mut engine = IngestEngine::new(
            Arc::clone(&store),
            IngestConfig::default(),
            Telemetry::new(),
        )
        .expect("engine");
        for (i, op) in ops[split..].iter().enumerate() {
            apply(&store, op);
            if i % drain_every == drain_every - 1 {
                engine.drain().expect("drain");
            }
        }
        engine.drain().expect("final drain");
        engine.publish(None);
        let catalog = engine.columns_catalog().expect("engine maintains columns");
        prop_assert_eq!(catalog.version(), store.version());
        assert_projection_exact(&store, &catalog)?;
    }
}

/// Derived-artifact recovery: crash the on-disk column commit at seeded
/// fault points, reopen over the surviving bytes, and prove the projection
/// is rebuilt from the JSON log — never trusted, nothing lost, and the
/// store itself untouched by the torn `.columns` state.
#[test]
fn crashed_column_commit_is_rebuilt_from_the_log() {
    const ROOT: &str = "/store";
    const PARTITIONS: usize = 2;

    let mut crashes_observed = 0;
    let mut save_crashes = 0;
    for (i, crash_at) in (1u64..80).step_by(3).enumerate() {
        // Seed a fresh store on a plain in-memory fs — these writes burn
        // no fault-plan ops, so the crash-point lands in the reopen or the
        // column commit itself.
        let mem = Arc::new(MemFs::new());
        {
            let store =
                Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>).unwrap();
            for id in 0..40u32 {
                apply(&store, &Op::Company(id % 24));
                apply(
                    &store,
                    &Op::Investor { id: 100 + id % 16, portfolio: vec![id % 24, (id + 7) % 24] },
                );
                apply(&store, &Op::Odd { id: id % 12, score: id * 13 });
            }
        }
        let fs = Arc::new(FailpointFs::new(
            Arc::clone(&mem) as Arc<dyn Vfs>,
            FaultPlan::crash_at(i as u64 + 1, crash_at),
        ));
        let mut opened = false;
        let crashed = (|| {
            let store = Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&fs) as Arc<dyn Vfs>)
                .map_err(|e| e.to_string())?;
            opened = true;
            let set = ColumnSet::build_from_store(&store, ColumnConfig::default(), None)
                .map_err(|e| e.to_string())?;
            save(&store, &set).map_err(|e| e.to_string())?;
            Ok::<(), String>(())
        })()
        .is_err();
        if crashed {
            assert!(fs.crashed(), "column commit failed for a non-injected reason");
            crashes_observed += 1;
            if opened {
                save_crashes += 1;
            }
        }

        // Reopen over whatever survived: the JSON log must be intact and
        // open_or_rebuild must hand back an exact projection, rebuilding
        // whenever the torn commit left no trustworthy columns.
        let store = Store::open_with_vfs(ROOT, PARTITIONS, Arc::clone(&mem) as Arc<dyn Vfs>)
            .unwrap_or_else(|e| panic!("store lost to a column crash at op {crash_at}: {e}"));
        let (set, _rebuilt) =
            open_or_rebuild(&store, ColumnConfig::default(), None).expect("open_or_rebuild");
        let catalog = set.catalog();
        assert_eq!(set.version(), store.version());
        for (ns, snap) in all_snapshots(&store) {
            let json = store.scan_partitions(&ns, snap).expect("json scan");
            let cols = catalog.docs_partitioned(&ns, snap).expect("column decode");
            assert_eq!(
                image(&json),
                image(&cols),
                "crash at op {crash_at}: recovered columns diverge for {ns}@{}",
                snap.0
            );
        }
        assert_eq!(edges_json(&store), catalog.edges(NS_USERS, SnapshotId(0)).unwrap());
    }
    assert!(crashes_observed >= 3, "sweep too shallow: only {crashes_observed} crash(es) fired");
    assert!(
        save_crashes >= 1,
        "no crash-point in the sweep landed inside the column commit itself"
    );
}
